// Command fabricpower regenerates the paper's tables and figures and runs
// the ablation studies.
//
// Usage:
//
//	fabricpower tech                      # §5.1 E_T derivation
//	fabricpower table1 [-cycles N] [-workers N]
//	fabricpower table2                    # Table 2 buffer energies
//	fabricpower fig9  [-sizes 4,8,16,32] [-slots N] [-csv file] [-workers N]
//	fabricpower fig10 [-load 0.5] [-csv file] [-workers N]
//	fabricpower crossover [-ports 32] [-perword] [-workers N]
//	fabricpower saturate [-ports 16] [-workers N]
//	fabricpower ablate [-study buffer|fcwire|queue]
//	fabricpower simulate -arch banyan -ports 16 -load 0.3
//	fabricpower dpm [-policies alwayson,idlegate,...] [-archs banyan] [-loads 0.1,0.3] [-workers N]
//	fabricpower net [-topos fattree,ring] [-nodes 4] [-routings shortest,consolidate]
//	                [-policies alwayson,idlegate] [-matrix uniform] [-loads 0.1,0.3] [-workers N]
//
// Sweep commands fan their operating points across -workers goroutines
// (default: all cores); results are bit-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fabricpower/internal/core"
	"fabricpower/internal/exp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "tech":
		err = exp.TechReport(core.PaperModel(), os.Stdout)
	case "table1":
		err = runTable1(args)
	case "table2":
		err = runTable2()
	case "fig9":
		err = runFig9(args)
	case "fig10":
		err = runFig10(args)
	case "crossover":
		err = runCrossover(args)
	case "saturate":
		err = runSaturate(args)
	case "ablate":
		err = runAblate(args)
	case "simulate":
		err = runSimulate(args)
	case "dpm":
		err = runDPM(args)
	case "net":
		err = runNet(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `fabricpower — switch-fabric power analysis (DAC 2002 reproduction)

commands:
  tech        technology parameters and the 87 fJ Thompson-grid derivation
  table1      node-switch bit-energy LUTs (gate-level recharacterization)
  table2      Banyan shared-SRAM buffer bit energies
  fig9        power vs throughput sweep (4 architectures × port sizes)
  fig10       power vs port count at fixed throughput
  crossover   cheapest architecture per load at one size
  saturate    input-buffered throughput ceiling
  ablate      ablation studies (-study buffer|fcwire|queue)
  simulate    one operating point with full breakdown
  dpm         power-management study: policy × architecture × load grid
              with static power attached (gating, sleep, DVFS savings)
  net         network-of-routers study: topology × routing × DPM policy
              × load grid, multi-hop flows over a backbone of full
              fabric+router nodes

sweep commands accept -workers N (default 0 = all cores); results are
bit-identical for any worker count`)
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func simParams(slots uint64, seed int64, workers int) exp.SimParams {
	return exp.SimParams{MeasureSlots: slots, Seed: seed, Workers: workers}
}

func parseLoads(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseArchs(s string) ([]core.Architecture, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]core.Architecture, 0, len(parts))
	for _, p := range parts {
		a, err := core.ParseArchitecture(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func parseNames(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	cycles := fs.Int("cycles", 192, "measured cycles per input vector")
	width := fs.Int("width", 32, "datapath width in bits")
	seed := fs.Int64("seed", 1, "payload PRNG seed")
	workers := fs.Int("workers", 0, "parallel characterizations (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t1, err := exp.RunTable1(core.PaperModel(), exp.Table1Options{Cycles: *cycles, BusWidth: *width, Seed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	return t1.Render(os.Stdout)
}

func runTable2() error {
	t2, err := exp.RunTable2(core.PaperModel())
	if err != nil {
		return err
	}
	return t2.Render(os.Stdout)
}

func withCSV(path string, csv func(w io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return csv(f)
}

func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "4,8,16,32", "comma-separated port counts")
	slots := fs.Uint64("slots", 3000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	csvPath := fs.String("csv", "", "also write CSV to this file")
	perWord := fs.Bool("perword", false, "per-word buffer accounting")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	model := core.PaperModel()
	if *perWord {
		model = core.PerWordBufferModel()
	}
	f9, err := exp.RunFig9(model, sizes, nil, simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	if err := f9.Render(os.Stdout); err != nil {
		return err
	}
	return withCSV(*csvPath, f9.CSV)
}

func runFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "4,8,16,32", "comma-separated port counts")
	load := fs.Float64("load", 0.5, "offered load")
	slots := fs.Uint64("slots", 3000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	csvPath := fs.String("csv", "", "also write CSV to this file")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	f10, err := exp.RunFig10(core.PaperModel(), sizes, *load, simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	if err := f10.Render(os.Stdout); err != nil {
		return err
	}
	return withCSV(*csvPath, f10.CSV)
}

func runCrossover(args []string) error {
	fs := flag.NewFlagSet("crossover", flag.ExitOnError)
	ports := fs.Int("ports", 32, "fabric size")
	slots := fs.Uint64("slots", 2000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	perWord := fs.Bool("perword", false, "per-word buffer accounting (recovers the paper's 35% crossover)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	model := core.PaperModel()
	if *perWord {
		model = core.PerWordBufferModel()
	}
	c, err := exp.RunCrossover(model, *ports, nil, simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	return c.Render(os.Stdout)
}

func runSaturate(args []string) error {
	fs := flag.NewFlagSet("saturate", flag.ExitOnError)
	ports := fs.Int("ports", 16, "fabric size")
	slots := fs.Uint64("slots", 3000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := exp.RunSaturation(core.PaperModel(), *ports, simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	return s.Render(os.Stdout)
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	study := fs.String("study", "buffer", "buffer | fcwire | queue")
	ports := fs.Int("ports", 16, "fabric size")
	load := fs.Float64("load", 0.5, "offered load")
	slots := fs.Uint64("slots", 2000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := simParams(*slots, *seed, 1)
	switch *study {
	case "buffer":
		a, err := exp.RunBufferAblation(core.PaperModel(), *ports, *load, p)
		if err != nil {
			return err
		}
		return a.Render(os.Stdout)
	case "fcwire":
		a, err := exp.RunFCWireAblation(core.PaperModel(), *ports, *load, p)
		if err != nil {
			return err
		}
		return a.Render(os.Stdout)
	case "queue":
		a, err := exp.RunQueueAblation(core.PaperModel(), *ports, p)
		if err != nil {
			return err
		}
		return a.Render(os.Stdout)
	}
	return fmt.Errorf("unknown study %q", *study)
}

func runDPM(args []string) error {
	fs := flag.NewFlagSet("dpm", flag.ExitOnError)
	policiesFlag := fs.String("policies", "", "comma-separated policies (default: alwayson,buffersleep,composite,idlegate,loaddvfs)")
	archsFlag := fs.String("archs", "", "comma-separated architectures (default: all four)")
	ports := fs.Int("ports", 16, "fabric size")
	loadsFlag := fs.String("loads", "", "comma-separated offered loads (default 0.1,0.2,0.3,0.4,0.5)")
	slots := fs.Uint64("slots", 3000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	csvPath := fs.String("csv", "", "also write CSV to this file")
	perWord := fs.Bool("perword", false, "per-word buffer accounting")
	noStatic := fs.Bool("nostatic", false, "zero static power: no idle/transition energy on the ledger (policies still gate admission, and loaddvfs still V²-scales dynamic energy)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	archs, err := parseArchs(*archsFlag)
	if err != nil {
		return err
	}
	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		return err
	}
	model := core.PaperModel()
	if *perWord {
		model = core.PerWordBufferModel()
	}
	if !*noStatic {
		model.Static = core.DefaultStaticPower()
	}
	study, err := exp.RunDPMStudy(model, parseNames(*policiesFlag), archs, *ports, loads,
		simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	if err := study.Render(os.Stdout); err != nil {
		return err
	}
	return withCSV(*csvPath, study.CSV)
}

func runNet(args []string) error {
	fs := flag.NewFlagSet("net", flag.ExitOnError)
	toposFlag := fs.String("topos", "", "comma-separated topologies (default: chain,ring,star,fattree)")
	nodes := fs.Int("nodes", 4, "topology size (for fattree: leaf count)")
	routingsFlag := fs.String("routings", "", "comma-separated routing policies (default: shortest,consolidate)")
	policiesFlag := fs.String("policies", "", "comma-separated DPM policies (default: alwayson,idlegate)")
	matrix := fs.String("matrix", "uniform", "traffic matrix: uniform | gravity | hotspot")
	archName := fs.String("arch", "crossbar", "per-node fabric architecture")
	loadsFlag := fs.String("loads", "", "comma-separated per-host offered loads (default 0.1,0.2,0.3,0.4,0.5)")
	slots := fs.Uint64("slots", 3000, "measured slots per point")
	seed := fs.Int64("seed", 1, "traffic seed")
	csvPath := fs.String("csv", "", "also write CSV to this file")
	noStatic := fs.Bool("nostatic", false, "zero static power: dynamic-only accounting (routing and gating still shape traffic)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := core.ParseArchitecture(*archName)
	if err != nil {
		return err
	}
	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		return err
	}
	model := core.PaperModel()
	if !*noStatic {
		model.Static = core.DefaultStaticPower()
	}
	study, err := exp.RunNetworkStudy(model, exp.NetworkStudyOptions{
		Arch:       arch,
		Nodes:      *nodes,
		Topologies: parseNames(*toposFlag),
		Routings:   parseNames(*routingsFlag),
		Policies:   parseNames(*policiesFlag),
		Loads:      loads,
		Matrix:     *matrix,
	}, simParams(*slots, *seed, *workers))
	if err != nil {
		return err
	}
	if err := study.Render(os.Stdout); err != nil {
		return err
	}
	return withCSV(*csvPath, study.CSV)
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	archName := fs.String("arch", "banyan", "crossbar | fullyconnected | banyan | batcherbanyan")
	ports := fs.Int("ports", 16, "fabric size")
	load := fs.Float64("load", 0.3, "offered load")
	slots := fs.Uint64("slots", 3000, "measured slots")
	seed := fs.Int64("seed", 1, "traffic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := core.ParseArchitecture(*archName)
	if err != nil {
		return err
	}
	res, err := exp.RunPoint(core.PaperModel(), arch, *ports, *load, simParams(*slots, *seed, 1))
	if err != nil {
		return err
	}
	fmt.Printf("%s %d×%d at %.0f%% offered load (%d measured slots)\n",
		arch, *ports, *ports, *load*100, res.Slots)
	fmt.Printf("  throughput     : %.2f%%\n", res.Throughput*100)
	fmt.Printf("  avg latency    : %.2f slots (max %d)\n", res.AvgLatencySlots, res.MaxLatencySlots)
	fmt.Printf("  switch power   : %.4f mW\n", res.Power.SwitchMW)
	fmt.Printf("  buffer power   : %.4f mW (%d buffering events)\n", res.Power.BufferMW, res.BufferEvents)
	fmt.Printf("  wire power     : %.4f mW\n", res.Power.WireMW)
	fmt.Printf("  total power    : %.4f mW\n", res.Power.TotalMW())
	return nil
}
