package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioGoldenWithTrace re-runs one network scenario from the
// corpus with -trace attached: the stdout report must stay
// byte-identical to the pinned golden (profiling is simulation-
// invisible), and the side file must be a valid Chrome trace carrying
// spans from the kernel, the sweep engine, and (cold) caches.
func TestScenarioGoldenWithTrace(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(repoRoot); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	}()

	const name = "green-network"
	tracePath := filepath.Join(t.TempDir(), name+".trace.json")
	var out strings.Builder
	err = dispatch(context.Background(), "run",
		[]string{filepath.Join("scenarios", name+".json"), "-trace", tracePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("scenarios", "golden", name+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-trace changed the %s report:\n--- got ---\n%s\n--- want ---\n%s",
			name, out.String(), want)
	}
	checkTraceFile(t, tracePath)
}

// updateGolden regenerates the pinned scenario reports instead of
// comparing: UPDATE_GOLDEN=1 go test ./cmd/fabricpower -run ScenarioGolden
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

// TestScenarioGoldenOutputs is the scenario corpus as a regression
// suite: every checked-in scenarios/*.json runs through `fabricpower
// run` and must reproduce its pinned report in scenarios/golden/ byte
// for byte. A model change that shifts any number shows up here as a
// diff — re-pin deliberately with UPDATE_GOLDEN=1 and review what
// moved.
func TestScenarioGoldenOutputs(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	// Scenario files reference repo-relative paths (trace recordings),
	// so run from the repo root like CI and users do.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(repoRoot); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	}()

	specs, err := filepath.Glob(filepath.Join("scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no scenario files found; corpus missing")
	}
	for _, spec := range specs {
		name := strings.TrimSuffix(filepath.Base(spec), ".json")
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := dispatch(context.Background(), "run", []string{spec}, &out); err != nil {
				t.Fatalf("running %s: %v", spec, err)
			}
			golden := filepath.Join("scenarios", "golden", name+".txt")
			if updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden report (regenerate with UPDATE_GOLDEN=1 go test ./cmd/fabricpower -run ScenarioGolden): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("%s drifted from its pinned report:\n--- got ---\n%s\n--- want ---\n%s", spec, out.String(), want)
			}
		})
	}
}
