package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"fabricpower/internal/studyd"
)

// runServe boots the long-running study server: scenario specs in over
// HTTP, NDJSON result streams out, model caches shared across every
// request for the process lifetime. SIGINT/SIGTERM drain in-flight
// studies (each sees its context cancelled, flushes the records it
// completed, and closes its stream with a study_finish line) before
// the listener shuts down.
func runServe(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	maxConcurrent := fs.Int("max-concurrent", 2, "studies executing at once")
	maxQueue := fs.Int("max-queue", 8, "studies waiting for a slot beyond that; past both limits POST gets 429 + Retry-After")
	workers := fs.Int("workers", 0, "per-study sweep workers when the request doesn't pin ?workers= (0 = all cores)")
	studyTimeout := fs.Duration("study-timeout", 0, "per-study run deadline (0 = none)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight streams")
	quiet := fs.Bool("q", false, "suppress per-request lifecycle logging on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	cfg := studyd.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Workers:       *workers,
		StudyTimeout:  *studyTimeout,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "studyd: "+format+"\n", args...)
		}
	}
	s := studyd.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "studyd: listening on http://%s (POST /v1/studies; healthz, expvar, pprof on the same mux)\n",
		ln.Addr().String())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	// Drain: stop admitting (503 on new POSTs), cancel every in-flight
	// study so its stream flushes and finishes, then close the listener
	// once handlers return or the grace budget runs out.
	fmt.Fprintf(os.Stderr, "studyd: shutting down (draining up to %s)\n", *grace)
	s.Stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
		return fmt.Errorf("serve: drain exceeded %s: %w", *grace, err)
	}
	return nil
}

// runSubmit posts a spec to a studyd server and streams the study's
// records to stdout — byte-compatible with `fabricpower run -json`
// against the same spec, for any server worker count.
func runSubmit(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "studyd base URL")
	workers := fs.Int("workers", 0, "pin the server-side sweep worker count (0 = server default)")
	timeout := fs.Duration("timeout", 0, "give up on the whole submission after this long (0 = none)")
	telPath := fs.String("telemetry", "", "write the stream's point-tagged kernel telemetry lines to this file")
	tsample := fs.Uint64("tsample", 0, "telemetry sample interval in slots (0 = server default; needs -telemetry)")
	tracePath := fs.String("trace", "", "ask for the request's server-side execution profile and write it to this file as Chrome trace-event JSON")
	verbose := fs.Bool("v", false, "log stream progress events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) > 1 {
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("submit: want exactly one spec path (or '-' for stdin), got %d", 1+fs.NArg())
		}
		rest = rest[:1]
	}
	if len(rest) != 1 {
		return fmt.Errorf("submit: want exactly one spec path (or '-' for stdin), got %d", len(rest))
	}
	var spec io.Reader = os.Stdin
	if path := rest[0]; path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		spec = f
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := studyd.SubmitOptions{Workers: *workers, Trace: *tracePath != ""}
	sinks := studyd.SubmitSinks{Records: w}
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	if *telPath != "" {
		f, err := os.Create(*telPath)
		if err != nil {
			return err
		}
		closers = append(closers, f.Close)
		opt.Telemetry = true
		opt.TSample = *tsample
		sinks.Telemetry = f
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		closers = append(closers, f.Close)
		sinks.Trace = f
	}
	if *verbose {
		sinks.Events = func(line []byte) { os.Stderr.Write(line) }
	}

	res, err := studyd.Submit(ctx, nil, *server, spec, opt, sinks)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if *verbose {
		d := res.FinishCache.Sub(res.StartCache)
		fmt.Fprintf(os.Stderr, "submit: study %s: %d/%d points in %.1f ms (cache: %d char hits / %d misses, %d stage-grid hits / %d misses)\n",
			res.ID, res.Completed, res.Points, res.DurationMS,
			d.CharHits, d.CharMisses, d.StageGridHits, d.StageGridMisses)
	}
	// The stream completed but the sweep didn't: every record that ran
	// is already on stdout (like run -json after cancellation); surface
	// the server-side error and exit nonzero.
	if res.RemoteErr != "" {
		return errors.New("submit: server: " + res.RemoteErr)
	}
	return nil
}
