package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePort reserves an ephemeral port for a serve test to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// writeSpec drops a small two-point grid spec into the test dir.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	doc := `{
  "version": 1,
  "base": {
    "fabric": {"arch": "crossbar", "ports": 4},
    "sim": {"warmupSlots": 50, "measureSlots": 200, "seed": 2}
  },
  "axes": [{"name": "load", "floats": [0.1, 0.3]}]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeSubmitRoundTrip drives the two subcommands in-process:
// serve boots, submit streams a spec through it, and stdout matches
// `run -json` byte for byte. Cancelling serve's context drains it.
func TestServeSubmitRoundTrip(t *testing.T) {
	spec := writeSpec(t)
	addr := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- dispatch(ctx, "serve", []string{"-addr", addr, "-q"}, nil)
	}()
	waitHealthy(t, "http://"+addr, 10*time.Second)

	var local strings.Builder
	if err := dispatch(context.Background(), "run", []string{"-json", spec}, &local); err != nil {
		t.Fatal(err)
	}
	var remote strings.Builder
	if err := dispatch(context.Background(), "submit",
		[]string{"-server", "http://" + addr, spec}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("submit output differs from run -json:\nlocal:\n%sremote:\n%s", local.String(), remote.String())
	}

	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve exited with %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after cancellation")
	}
}

// waitHealthy polls the server's /healthz until it answers.
func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitConnectionRefused: a submit against nothing fails at the
// transport with a nonzero-exit error, not a hang.
func TestSubmitConnectionRefused(t *testing.T) {
	spec := writeSpec(t)
	addr := freePort(t) // reserved then released: nobody is listening
	err := dispatch(context.Background(), "submit", []string{"-server", "http://" + addr, spec}, nil)
	if err == nil {
		t.Fatal("submit against a dead server must fail")
	}
}

// TestRunTimeoutFlag: -timeout cancels a long study via its context
// deadline; the partial -json stream still carries every completed
// record and the command exits nonzero.
func TestRunTimeoutFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.json")
	doc := `{
  "version": 1,
  "base": {
    "fabric": {"arch": "crossbar", "ports": 8},
    "traffic": {"load": 0.3},
    "sim": {"warmupSlots": 500, "measureSlots": 20000, "seed": 1}
  },
  "axes": [{"name": "seed", "ints": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]}]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := dispatch(context.Background(), "run", []string{"-json", "-workers", "1", "-timeout", "150ms", path}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Whatever completed before the deadline was flushed; the sweep
	// must not have run to completion.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if out.Len() > 0 && len(lines) >= 20 {
		t.Fatalf("timeout never fired: all %d points ran", len(lines))
	}
}
