package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fabricpower/study"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("4,8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParseSizesEmpty(t *testing.T) {
	got, err := parseSizes("")
	if err != nil || got != nil {
		t.Fatalf("empty should give nil, got %v/%v", got, err)
	}
}

func TestParseSizesRejectsGarbage(t *testing.T) {
	if _, err := parseSizes("4,eight"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestSimParamsHelper(t *testing.T) {
	p := simParams(1234, 9, 3)
	if p.MeasureSlots != 1234 || p.Seed != 9 || p.Workers != 3 {
		t.Fatalf("params %+v", p)
	}
}

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0.1, 0.25,0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.25, 0.5}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if got, err := parseLoads(""); err != nil || got != nil {
		t.Fatalf("empty should give nil, got %v/%v", got, err)
	}
	if _, err := parseLoads("0.1,none"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestParseArchs(t *testing.T) {
	got, err := parseArchs("banyan, crossbar")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].String() != "banyan" || got[1].String() != "crossbar" {
		t.Fatalf("got %v", got)
	}
	if _, err := parseArchs("toroidal"); err == nil {
		t.Fatal("unknown architecture should fail")
	}
}

// TestRunNetTiny drives the net subcommand end to end on a small grid
// and checks the CSV side channel carries every point.
func TestRunNetTiny(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "net.csv")
	// Discard the rendered table: the test only asserts the CSV.
	err := runNet(context.Background(), []string{
		"-topos", "fattree", "-nodes", "4",
		"-routings", "shortest,consolidate", "-policies", "alwayson,idlegate",
		"-loads", "0.1", "-slots", "400", "-csv", csv,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if want := 1 + 2*2; len(lines) != want {
		t.Fatalf("CSV rows = %d, want %d:\n%s", len(lines), want, data)
	}
	if !strings.Contains(lines[0], "topology,routing,policy") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunNetRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := runNet(ctx, []string{"-topos", "moebius", "-loads", "0.1", "-slots", "50"}, io.Discard); err == nil {
		t.Error("unknown topology should fail")
	}
	if err := runNet(ctx, []string{"-arch", "toroidal"}, io.Discard); err == nil {
		t.Error("unknown architecture should fail")
	}
	if err := runNet(ctx, []string{"-matrix", "chaos", "-topos", "ring", "-loads", "0.1", "-slots", "50"}, io.Discard); err == nil {
		t.Error("unknown matrix should fail")
	}
}

// TestPrintScenarioRoundTripByteIdentical pins the acceptance
// contract of the declarative layer: for every legacy study
// subcommand, `<subcmd> -print-scenario | run -` reproduces the
// subcommand's output byte for byte.
func TestPrintScenarioRoundTripByteIdentical(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		cmd  string
		args []string
	}{
		{"fig9", []string{"-sizes", "4", "-slots", "150"}},
		{"fig10", []string{"-sizes", "4,8", "-slots", "150"}},
		{"crossover", []string{"-ports", "8", "-slots", "120", "-perword"}},
		{"saturate", []string{"-ports", "8", "-slots", "120"}},
		{"simulate", []string{"-arch", "banyan", "-ports", "8", "-load", "0.3", "-slots", "200"}},
		{"dpm", []string{"-archs", "banyan", "-ports", "8", "-loads", "0.1", "-slots", "200"}},
		{"net", []string{"-topos", "ring", "-nodes", "4", "-loads", "0.1", "-slots", "200"}},
		{"net", []string{"-topos", "fattree", "-nodes", "4", "-traffic", "bursty", "-shards", "2", "-loads", "0.1", "-slots", "200"}},
		{"table1", []string{"-cycles", "24", "-width", "8"}},
	}
	for _, tc := range cases {
		t.Run(tc.cmd, func(t *testing.T) {
			var legacy strings.Builder
			if err := dispatch(ctx, tc.cmd, tc.args, &legacy); err != nil {
				t.Fatal(err)
			}
			var spec strings.Builder
			if err := dispatch(ctx, tc.cmd, append(append([]string{}, tc.args...), "-print-scenario"), &spec); err != nil {
				t.Fatal(err)
			}
			specPath := filepath.Join(t.TempDir(), "spec.json")
			if err := os.WriteFile(specPath, []byte(spec.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			var viaSpec strings.Builder
			if err := dispatch(ctx, "run", []string{specPath}, &viaSpec); err != nil {
				t.Fatal(err)
			}
			if legacy.String() != viaSpec.String() {
				t.Fatalf("printed-scenario run diverged from the legacy subcommand:\n--- legacy ---\n%s\n--- via spec ---\n%s",
					legacy.String(), viaSpec.String())
			}
		})
	}
}

// TestRunRejectsBadSpecs: the run subcommand surfaces decode errors.
func TestRunRejectsBadSpecs(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"study": "fig9", "base": {"farbic": {}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(ctx, "run", []string{bad}, io.Discard); err == nil {
		t.Error("unknown field should fail")
	}
	if err := dispatch(ctx, "run", []string{filepath.Join(dir, "missing.json")}, io.Discard); err == nil {
		t.Error("missing file should fail")
	}
	if err := dispatch(ctx, "run", nil, io.Discard); err == nil {
		t.Error("missing path should fail")
	}
}

// TestRunJSON: `run -json` emits one machine-readable record per grid
// point instead of the rendered report.
func TestRunJSON(t *testing.T) {
	ctx := context.Background()
	spec := filepath.Join(t.TempDir(), "spec.json")
	doc := `{
  "version": 1,
  "base": {
    "fabric": {"arch": "crossbar", "ports": 4},
    "sim": {"warmupSlots": 50, "measureSlots": 200, "seed": 2}
  },
  "axes": [{"name": "load", "floats": [0.1, 0.3]}]
}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := dispatch(ctx, "run", []string{"-json", spec}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("records = %d, want 2:\n%s", len(lines), out.String())
	}
	for i, line := range lines {
		var rec study.ResultRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not a record: %v", i, err)
		}
		if rec.Index != i || rec.Result.Slots != 200 {
			t.Errorf("record %d = index %d, slots %d", i, rec.Index, rec.Result.Slots)
		}
	}
	// -json and -csv cannot both be honored.
	if err := dispatch(ctx, "run", []string{"-json", "-csv", "x.csv", spec}, io.Discard); err == nil {
		t.Error("-json with -csv should fail")
	}
}

func TestParseNames(t *testing.T) {
	got := parseNames(" alwayson ,, idlegate ")
	if len(got) != 2 || got[0] != "alwayson" || got[1] != "idlegate" {
		t.Fatalf("got %v", got)
	}
	if parseNames("") != nil {
		t.Fatal("empty should give nil")
	}
}

// TestRunNetFaultFlags drives the failure plumbing end to end from the
// CLI: -mtbf/-mttr inject generated link flaps (the table grows the
// lost column), a -faults file pins explicit events, and bad inputs
// fail loudly.
func TestRunNetFaultFlags(t *testing.T) {
	ctx := context.Background()
	var out strings.Builder
	err := runNet(ctx, []string{
		"-topos", "ring", "-nodes", "4", "-routings", "shortest",
		"-policies", "alwayson", "-loads", "0.2", "-slots", "400",
		"-mtbf", "150", "-mttr", "40",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lost") {
		t.Errorf("fault run did not render the lost column:\n%s", out.String())
	}

	faults := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(faults, []byte(
		`{"events": [{"slot": 100, "node": 1, "down": true}, {"slot": 200, "node": 1, "down": false}], "residualMW": 2}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runNet(ctx, []string{
		"-topos", "ring", "-nodes", "4", "-routings", "shortest",
		"-policies", "alwayson", "-loads", "0.2", "-slots", "400",
		"-faults", faults,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lost") {
		t.Errorf("-faults run did not render the lost column:\n%s", out.String())
	}

	if err := runNet(ctx, []string{"-faults", filepath.Join(t.TempDir(), "missing.json")}, io.Discard); err == nil {
		t.Error("missing -faults file should fail")
	}
	if err := runNet(ctx, []string{
		"-topos", "ring", "-loads", "0.1", "-slots", "50", "-mtbf", "100",
	}, io.Discard); err == nil {
		t.Error("-mtbf without -mttr should fail validation")
	}
}

// TestObservabilityFlagsLeaveStdoutIdentical pins the observability
// contract at the CLI: -v, -telemetry/-tsample, -trace and -metrics
// change nothing on stdout — the rendered report is byte-identical
// with and without them — while the side files fill with point-tagged
// JSONL, a Chrome trace, and a metrics snapshot.
func TestObservabilityFlagsLeaveStdoutIdentical(t *testing.T) {
	ctx := context.Background()
	args := []string{"-topos", "ring", "-nodes", "4", "-policies", "idlegate",
		"-loads", "0.1,0.3", "-slots", "300"}
	var plain strings.Builder
	if err := runNet(ctx, args, &plain); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	telPath := filepath.Join(dir, "tel.jsonl")
	tracePath := filepath.Join(dir, "run.trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var tapped strings.Builder
	withObs := append(append([]string{}, args...),
		"-v", "-telemetry", telPath, "-tsample", "50",
		"-trace", tracePath, "-metrics", metricsPath)
	if err := runNet(ctx, withObs, &tapped); err != nil {
		t.Fatal(err)
	}
	if plain.String() != tapped.String() {
		t.Errorf("observability flags changed stdout:\n--- plain ---\n%s\n--- tapped ---\n%s",
			plain.String(), tapped.String())
	}
	data, err := os.ReadFile(telPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("telemetry file is empty")
	}
	for i, line := range lines {
		var rec struct {
			Point *int   `json:"point"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("telemetry line %d: %v", i, err)
		}
		if rec.Point == nil || rec.Kind == "" {
			t.Fatalf("telemetry line %d missing point/kind: %s", i, line)
		}
	}
	checkTraceFile(t, tracePath)
	var snap struct {
		Metrics    map[string]int64    `json:"metrics"`
		Histograms map[string][]uint64 `json:"histograms"`
	}
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatalf("-metrics output is not a registry snapshot: %v", err)
	}
	if snap.Metrics["netsim.networks.built"] == 0 {
		t.Error("-metrics snapshot carries no netsim counters")
	}
	if len(snap.Histograms["netsim.step.barrier_wait_ns"]) == 0 {
		t.Error("-metrics snapshot carries no barrier-wait histogram")
	}
}

// checkTraceFile machine-validates a -trace output: well-formed Chrome
// trace JSON whose spans cover all three instrumented layers — the
// sweep engine, the sharded kernel, and (when cold) the caches.
func checkTraceFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	spans := make(map[string]int)
	threads := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads[fmt.Sprint(ev.Args["name"])]++
			}
		case "X":
			if ev.PID == nil || ev.TID == nil || ev.TS == nil || ev.Dur == nil {
				t.Fatalf("X event %q missing pid/tid/ts/dur: %+v", ev.Name, ev)
			}
			spans[ev.Name]++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"slot", "compute", "exchange", "wait", "point"} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q spans (spans: %v)", want, spans)
		}
	}
	if threads["sweep worker 0"] == 0 {
		t.Errorf("trace has no sweep worker row (threads: %v)", threads)
	}
	kernelRow := false
	for name := range threads {
		if strings.Contains(name, "coordinator") {
			kernelRow = true
		}
	}
	if !kernelRow {
		t.Errorf("trace has no kernel coordinator row (threads: %v)", threads)
	}
}

// TestRunSpecTelemetry: the `run` subcommand accepts the observability
// flags on either side of the spec path and writes the time series.
func TestRunSpecTelemetry(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	doc := `{
  "version": 1,
  "base": {
    "fabric": {"arch": "crossbar", "ports": 4},
    "sim": {"warmupSlots": 50, "measureSlots": 200, "seed": 2}
  },
  "axes": [{"name": "load", "floats": [0.1, 0.3]}]
}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	telPath := filepath.Join(dir, "tel.jsonl")
	var out strings.Builder
	if err := dispatch(ctx, "run", []string{spec, "-telemetry", telPath, "-tsample", "64"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(telPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"sim_sample"`) {
		t.Errorf("telemetry file carries no sim samples:\n%s", data)
	}
	if out.Len() == 0 {
		t.Error("run produced no report")
	}
}

// TestServePprof: the diagnostics server exposes the pprof index and
// the telemetry registry over expvar, and stops cleanly.
func TestServePprof(t *testing.T) {
	addr, stop, err := servePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"fabricpower"`) {
		t.Error("expvar endpoint does not publish the fabricpower registry")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing")
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}
