package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("4,8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParseSizesEmpty(t *testing.T) {
	got, err := parseSizes("")
	if err != nil || got != nil {
		t.Fatalf("empty should give nil, got %v/%v", got, err)
	}
}

func TestParseSizesRejectsGarbage(t *testing.T) {
	if _, err := parseSizes("4,eight"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestSimParamsHelper(t *testing.T) {
	p := simParams(1234, 9, 3)
	if p.MeasureSlots != 1234 || p.Seed != 9 || p.Workers != 3 {
		t.Fatalf("params %+v", p)
	}
}
