package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("4,8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParseSizesEmpty(t *testing.T) {
	got, err := parseSizes("")
	if err != nil || got != nil {
		t.Fatalf("empty should give nil, got %v/%v", got, err)
	}
}

func TestParseSizesRejectsGarbage(t *testing.T) {
	if _, err := parseSizes("4,eight"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestSimParamsHelper(t *testing.T) {
	p := simParams(1234, 9, 3)
	if p.MeasureSlots != 1234 || p.Seed != 9 || p.Workers != 3 {
		t.Fatalf("params %+v", p)
	}
}

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0.1, 0.25,0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.25, 0.5}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if got, err := parseLoads(""); err != nil || got != nil {
		t.Fatalf("empty should give nil, got %v/%v", got, err)
	}
	if _, err := parseLoads("0.1,none"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestParseArchs(t *testing.T) {
	got, err := parseArchs("banyan, crossbar")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].String() != "banyan" || got[1].String() != "crossbar" {
		t.Fatalf("got %v", got)
	}
	if _, err := parseArchs("toroidal"); err == nil {
		t.Fatal("unknown architecture should fail")
	}
}

// TestRunNetTiny drives the net subcommand end to end on a small grid
// and checks the CSV side channel carries every point.
func TestRunNetTiny(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "net.csv")
	// Silence the rendered table: the test only asserts the CSV.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	err = runNet([]string{
		"-topos", "fattree", "-nodes", "4",
		"-routings", "shortest,consolidate", "-policies", "alwayson,idlegate",
		"-loads", "0.1", "-slots", "400", "-csv", csv,
	})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if want := 1 + 2*2; len(lines) != want {
		t.Fatalf("CSV rows = %d, want %d:\n%s", len(lines), want, data)
	}
	if !strings.Contains(lines[0], "topology,routing,policy") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunNetRejectsBadFlags(t *testing.T) {
	if err := runNet([]string{"-topos", "moebius"}); err == nil {
		t.Error("unknown topology should fail")
	}
	if err := runNet([]string{"-arch", "toroidal"}); err == nil {
		t.Error("unknown architecture should fail")
	}
	if err := runNet([]string{"-matrix", "chaos", "-topos", "ring"}); err == nil {
		t.Error("unknown matrix should fail")
	}
}

func TestParseNames(t *testing.T) {
	got := parseNames(" alwayson ,, idlegate ")
	if len(got) != 2 || got[0] != "alwayson" || got[1] != "idlegate" {
		t.Fatalf("got %v", got)
	}
	if parseNames("") != nil {
		t.Fatal("empty should give nil")
	}
}
