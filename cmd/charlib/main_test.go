package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRunTinyCharacterization drives a small gate-level flow end to end
// and checks the calibrated banyan table lands on the paper's anchor.
func TestRunTinyCharacterization(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-width", "8", "-cycles", "16", "-switch", "banyan"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# calibration factor") {
		t.Errorf("missing calibration line:\n%s", out)
	}
	if !strings.Contains(out, "banyan 2x2:") {
		t.Errorf("missing banyan table:\n%s", out)
	}
	// Calibration pins the [01] vector at the paper's 1080 fJ anchor.
	m := regexp.MustCompile(`\[01\] (\d+\.\d) fJ/bit`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no [01] entry:\n%s", out)
	}
	if m[1] != "1080.0" {
		t.Errorf("calibrated banyan [01] = %s fJ, want 1080.0", m[1])
	}
}

func TestRunUncalibrated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-width", "8", "-cycles", "16", "-switch", "crosspoint", "-calibrate=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# calibration factor") {
		t.Error("uncalibrated run printed a calibration factor")
	}
	if !strings.Contains(buf.String(), "crosspoint:") {
		t.Errorf("missing crosspoint table:\n%s", buf.String())
	}
}

func TestRunWritesJSON(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "lut-")
	var buf bytes.Buffer
	if err := run([]string{"-width", "8", "-cycles", "16", "-switch", "banyan", "-json", prefix}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prefix + "banyan-2x2.json")
	if err != nil {
		t.Fatalf("JSON LUT not written: %v", err)
	}
	if !strings.Contains(string(data), "\"inputs\"") {
		t.Errorf("JSON LUT content unexpected: %s", data)
	}
}

func TestRunFlagParsing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-switch", "quantum"}, &buf); err == nil {
		t.Error("unknown switch should fail")
	}
	if err := run([]string{"-width", "nope"}, &buf); err == nil {
		t.Error("bad width should fail")
	}
	if err := run([]string{"-h"}, &buf); err != flag.ErrHelp {
		t.Errorf("-h should return flag.ErrHelp, got %v", err)
	}
}
