// Command charlib runs the gate-level characterization flow of §5.1 on
// the node-switch netlists and emits the resulting bit-energy look-up
// tables, optionally calibrated to the paper's Table 1 anchor.
//
// Usage:
//
//	charlib [-width 32] [-cycles 256] [-calibrate] [-switch all|crosspoint|banyan|batcher|mux]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fabricpower/internal/circuits"
	"fabricpower/internal/energy"
	"fabricpower/internal/gates"
	"fabricpower/internal/tech"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// run is the testable command body: it parses args with its own flag
// set and writes the characterization to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("charlib", flag.ContinueOnError)
	width := fs.Int("width", 32, "datapath width in bits")
	cycles := fs.Int("cycles", 256, "measured cycles per input vector")
	seed := fs.Int64("seed", 1, "payload PRNG seed")
	calibrate := fs.Bool("calibrate", true, "calibrate to the paper's banyan [0,1] = 1080 fJ anchor")
	which := fs.String("switch", "all", "all | crosspoint | banyan | batcher | mux")
	jsonOut := fs.String("json", "", "write the selected LUTs as JSON files with this prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *which {
	case "all", "crosspoint", "banyan", "batcher", "mux":
	default:
		return fmt.Errorf("unknown switch %q (want all, crosspoint, banyan, batcher or mux)", *which)
	}

	tp := tech.Default180nm()
	lib, err := gates.NewLibrary(tp.GateCapFF, tp.VDD)
	if err != nil {
		return err
	}
	opt := energy.CharOptions{Cycles: *cycles, Seed: *seed}

	// Characterize the anchor first so one global factor applies.
	bn, err := circuits.BanyanSwitch(lib, *width)
	if err != nil {
		return err
	}
	bnTab, err := energy.Characterize(bn, opt)
	if err != nil {
		return err
	}
	scale := 1.0
	if *calibrate {
		raw := bnTab.EnergyFJ(0b01)
		if raw <= 0 {
			return fmt.Errorf("anchor characterized at %g fJ", raw)
		}
		scale = energy.PaperBanyan().EnergyFJ(0b01) / raw
		fmt.Fprintf(w, "# calibration factor %.5g (banyan [0,1] -> 1080 fJ)\n", scale)
	}

	saveJSON := func(name string, t energy.Table) error {
		if *jsonOut == "" {
			return nil
		}
		out := t
		if scale != 1 {
			// Materialize the calibrated values: anchor the table to its
			// own scaled single-input entry.
			cal, err := energy.Calibrate(t, 0b1, t.EnergyFJ(0b1)*scale)
			if err == nil {
				out = cal
			}
		}
		path := *jsonOut + strings.ReplaceAll(name, " ", "-") + ".json"
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := energy.WriteJSON(f, out); err != nil {
			return err
		}
		fmt.Fprintf(w, "# wrote %s\n", path)
		return nil
	}

	dump2 := func(name string, t energy.Table) error {
		fmt.Fprintf(w, "%s:\n", name)
		for v := energy.Vector(0); v < 1<<uint(t.Inputs()); v++ {
			fmt.Fprintf(w, "  [%0*b] %.1f fJ/bit\n", t.Inputs(), uint64(v), t.EnergyFJ(v)*scale)
		}
		return saveJSON(name, t)
	}

	if *which == "all" || *which == "banyan" {
		if err := dump2("banyan 2x2", bnTab); err != nil {
			return err
		}
	}
	if *which == "all" || *which == "crosspoint" {
		xp, err := circuits.Crosspoint(lib, *width)
		if err != nil {
			return err
		}
		t, err := energy.Characterize(xp, opt)
		if err != nil {
			return err
		}
		if err := dump2("crosspoint", t); err != nil {
			return err
		}
	}
	if *which == "all" || *which == "batcher" {
		bt, err := circuits.BatcherSwitch(lib, *width, 5)
		if err != nil {
			return err
		}
		t, err := energy.Characterize(bt, opt)
		if err != nil {
			return err
		}
		if err := dump2("batcher 2x2", t); err != nil {
			return err
		}
	}
	if *which == "all" || *which == "mux" {
		for _, n := range []int{4, 8, 16, 32} {
			mx, err := circuits.MuxN(lib, *width, n)
			if err != nil {
				return err
			}
			t, err := energy.Characterize(mx, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "mux N=%d:\n", n)
			for k := 1; k <= n; k *= 2 {
				v := energy.Vector(1<<uint(k) - 1)
				fmt.Fprintf(w, "  [%d active] %.1f fJ/bit\n", k, t.EnergyFJ(v)*scale)
			}
			if err := saveJSON(fmt.Sprintf("mux%d", n), t); err != nil {
				return err
			}
		}
	}
	return nil
}
